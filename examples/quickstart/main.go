// Quickstart: build an ad-hoc network, compute an exact-distance
// (1,0)-remote-spanner, and verify that every node's augmented view
// preserves shortest paths while advertising far fewer links.
package main

import (
	"fmt"
	"log"

	"remspan"
)

func main() {
	// A random unit-disk network: ~300 radios on a 4×4 field with unit
	// communication range (the paper's ad-hoc network model).
	g := remspan.RandomUDG(300, 4, 42)
	fmt.Printf("network: %d nodes, %d links, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	// The (1,0)-remote-spanner: exact distances from every node's own
	// viewpoint, even though most links are never advertised.
	s := remspan.Exact(g)
	fmt.Printf("remote-spanner: %d links advertised (%.1f%% of the topology)\n",
		s.Edges(), 100*float64(s.Edges())/float64(g.M()))

	// Verify the guarantee exactly — every pair, integer arithmetic.
	if err := remspan.VerifySpanner(g, s); err != nil {
		log.Fatalf("guarantee violated: %v", err)
	}
	fmt.Printf("verified: d_{H_u}(u,v) = d_G(u,v) for all %d ordered pairs\n",
		g.N()*(g.N()-1))

	// Route a packet with greedy link-state forwarding over the spanner
	// to the node farthest from 0.
	src, dst := 0, 0
	for v := 0; v < g.N(); v++ {
		if g.Distance(src, v) > g.Distance(src, dst) {
			dst = v
		}
	}
	path, ok := remspan.Route(g, s.H, src, dst)
	if !ok {
		log.Fatal("routing failed")
	}
	fmt.Printf("greedy route %d→%d: %d hops (shortest possible: %d)\n",
		src, dst, len(path)-1, g.Distance(src, dst))
	fmt.Printf("path: %v\n", path)
}
