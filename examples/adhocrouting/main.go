// Ad-hoc link-state routing: compare what a routing protocol has to
// flood network-wide — the full topology (OSPF-style) versus a
// remote-spanner (the paper's optimization of OLSR-style protocols) —
// and what route quality each buys. Demonstrates the central trade-off
// of the paper on a dense wireless topology.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"remspan"
)

func main() {
	g := remspan.RandomUDG(500, 4, 7)
	fmt.Printf("ad-hoc network: %d nodes, %d links (avg degree %.1f)\n\n",
		g.N(), g.M(), 2*float64(g.M())/float64(g.N()))

	low, err := remspan.LowStretch(g, 0.5)
	if err != nil {
		panic(err)
	}
	structures := []struct {
		name string
		s    *remspan.Spanner
	}{
		{"(1,0)-remote-spanner   ", remspan.Exact(g)},
		{"(3/2,0)-remote-spanner ", low},
		{"(2,-1) 2-connecting    ", remspan.TwoConnecting(g)},
	}

	// Advertisement cost: the distributed protocol's traffic versus
	// full link-state flooding.
	_, fullWords := remspan.FullLinkStateCost(g)
	fmt.Printf("full link-state flooding: %d words\n\n", fullWords)

	rng := rand.New(rand.NewSource(99))
	pairs := make([][2]int, 200)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
	}

	fmt.Printf("%-24s %8s %8s %12s %12s\n",
		"advertised structure", "links", "% of m", "max stretch", "avg stretch")
	for _, st := range structures {
		maxS, sumS, cnt := 0.0, 0.0, 0
		for _, p := range pairs {
			if p[0] == p[1] {
				continue
			}
			path, ok := remspan.Route(g, st.s.H, p[0], p[1])
			if !ok {
				log.Fatalf("%s: routing %v failed", st.name, p)
			}
			d := g.Distance(p[0], p[1])
			if d == 0 {
				continue
			}
			sr := float64(len(path)-1) / float64(d)
			sumS += sr
			cnt++
			if sr > maxS {
				maxS = sr
			}
		}
		fmt.Printf("%-24s %8d %7.1f%% %12.3f %12.3f\n",
			st.name, st.s.Edges(), 100*float64(st.s.Edges())/float64(g.M()),
			maxS, sumS/float64(cnt))
	}

	fmt.Println("\nevery route respects the advertised structure's (α, β) guarantee;")
	fmt.Println("the (1,0)-remote-spanner routes optimally while flooding a fraction of the links.")
}
