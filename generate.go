package remspan

import (
	"math/rand"

	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
)

// RandomUDG returns the unit-disk graph of a Poisson point process with
// approximately n nodes on a side×side square (connection radius 1) —
// the paper's random ad-hoc network model — restricted to its largest
// connected component. Deterministic in seed.
func RandomUDG(n int, side float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	pts := geom.PoissonSquare(float64(n)/(side*side), side, rng)
	g := geom.UnitDiskGraph(pts, 1.0)
	keep, _ := graph.LargestComponent(g)
	return wrap(g.InducedSubgraph(keep))
}

// RandomUBG returns the unit-ball graph of n uniform points in
// [0, side]^dim — a unit-ball graph of a metric with doubling dimension
// ≈ dim. Deterministic in seed.
func RandomUBG(n, dim int, side float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	pts := geom.UniformBox(n, dim, side, rng)
	return wrap(geom.UnitBallGraph(geom.EuclideanMetric{Points: pts}, 1.0))
}

// ErdosRenyi returns G(n, p). Deterministic in seed.
func ErdosRenyi(n int, p float64, seed int64) *Graph {
	return wrap(gen.ErdosRenyi(n, p, rand.New(rand.NewSource(seed))))
}

// Grid returns the w×h grid graph.
func Grid(w, h int) *Graph { return wrap(gen.Grid(w, h)) }

// Ring returns the n-cycle.
func Ring(n int) *Graph { return wrap(gen.Ring(n)) }

// Hypercube returns the d-dimensional hypercube.
func Hypercube(d int) *Graph { return wrap(gen.Hypercube(d)) }

// RandomConnected returns a connected random graph: a random tree plus
// extra random edges. Deterministic in seed.
func RandomConnected(n, extraEdges int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := gen.RandomTree(n, rng)
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return wrap(g)
}
