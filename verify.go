package remspan

import (
	"fmt"

	"remspan/internal/flow"
	"remspan/internal/routing"
	"remspan/internal/spanner"
)

// Verify checks the (α, β)-remote-spanner property of h against g over
// all pairs exactly, returning a descriptive error for the violated
// pair with the smallest (u, v) (nil = the guarantee holds). Large
// graphs run on the word-parallel 64-source bit-packed BFS engine
// (see internal/spanner/verify_batch.go), so exhaustive all-pairs
// verification stays practical at production scale.
func Verify(g *Graph, h *Graph, st Stretch) error {
	if v := spanner.Check(g.raw(), h.raw(), st.internal()); v != nil {
		return fmt.Errorf("remspan: %w", error(v))
	}
	return nil
}

// VerifySpanner checks a constructed spanner against its own declared
// guarantee (including the k-connecting part, sampled over all pairs —
// quadratic × flow cost, intended for small graphs).
func VerifySpanner(g *Graph, s *Spanner) error {
	if err := Verify(g, s.H, s.Guarantee); err != nil {
		return err
	}
	if s.KConnecting > 1 {
		if v := spanner.CheckKConnecting(g.raw(), s.H.raw(), s.KConnecting, s.Guarantee.internal(), nil); v != nil {
			return fmt.Errorf("remspan: k-connecting: %w", error(v))
		}
	}
	return nil
}

// VerifyKConnecting checks the k-connecting (α, β) property over the
// given pairs (nil = all ordered pairs).
func VerifyKConnecting(g, h *Graph, k int, st Stretch, pairs [][2]int) error {
	if v := spanner.CheckKConnecting(g.raw(), h.raw(), k, st.internal(), pairs); v != nil {
		return fmt.Errorf("remspan: %w", error(v))
	}
	return nil
}

// StretchProfile reports the observed stretch of h's augmented views
// over g: the maximum and average of d_{H_u}(u,v)/d_G(u,v).
type StretchProfile struct {
	Pairs       int
	MaxStretch  float64
	AvgStretch  float64
	MaxAdditive int
}

// MeasureStretch computes the observed stretch profile. Like Verify,
// it runs the 64-source word-parallel engine on large graphs; the
// result is bit-identical to the scalar reference on every input.
func MeasureStretch(g, h *Graph) StretchProfile {
	p := spanner.MeasureProfile(g.raw(), h.raw())
	return StretchProfile{
		Pairs:       p.Pairs,
		MaxStretch:  p.MaxStretch,
		AvgStretch:  p.AvgStretch,
		MaxAdditive: p.MaxAdd,
	}
}

// DisjointPathDistance returns the paper's k-connecting distance
// d^k(s, t): the minimum total length of k internally vertex-disjoint
// paths (-1 when fewer than k exist).
func DisjointPathDistance(g *Graph, s, t, k int) int {
	return flow.KDistance(g.raw(), s, t, k)
}

// Route simulates greedy link-state forwarding from s to t where every
// node knows its own neighbors plus the advertised spanner h (§1). It
// returns the hop-by-hop path taken.
func Route(g, h *Graph, s, t int) (path []int, ok bool) {
	r := routing.GreedyRoute(g.raw(), h.raw(), s, t)
	if !r.OK {
		return nil, false
	}
	out := make([]int, len(r.Path))
	for i, v := range r.Path {
		out[i] = int(v)
	}
	return out, true
}

// MultipathRoutes returns k minimum-total-length internally disjoint
// s→t routes available in s's augmented view of h.
func MultipathRoutes(g, h *Graph, s, t, k int) (paths [][]int, totalLen int, ok bool) {
	res, ok, err := routing.DisjointRoutes(g.raw(), h.raw(), s, t, k)
	if err != nil || !ok {
		return nil, 0, false
	}
	paths = make([][]int, len(res.Paths))
	for i, p := range res.Paths {
		paths[i] = make([]int, len(p))
		for j, v := range p {
			paths[i][j] = int(v)
		}
	}
	return paths, res.Total, true
}
