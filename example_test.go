package remspan_test

import (
	"fmt"

	"remspan"
)

// The fundamental object: a (1,0)-remote-spanner preserves exact
// distances from every node's augmented viewpoint while dropping edges
// a classical spanner would have to keep.
func ExampleExact() {
	// 6-cycle plus a chord.
	g := remspan.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3},
	})
	s := remspan.Exact(g)
	if err := remspan.VerifySpanner(g, s); err != nil {
		fmt.Println("violation:", err)
		return
	}
	fmt.Printf("guarantee %s holds with %d of %d edges\n",
		s.Guarantee, s.Edges(), g.M())
	// Output:
	// guarantee (1, 0) holds with 5 of 7 edges
}

// Low-stretch remote-spanners trade a (1+ε, 1−2ε) guarantee for size;
// ε is rounded down to ε' = 1/⌈1/ε⌉ so the guarantee is exact rational.
func ExampleLowStretch() {
	g := remspan.RandomUDG(200, 4, 7)
	s, err := remspan.LowStretch(g, 0.5)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("radius:", s.Radius)
	fmt.Println("guarantee:", s.Guarantee)
	fmt.Println("valid:", remspan.Verify(g, s.H, s.Guarantee) == nil)
	// Output:
	// radius: 3
	// guarantee: (3/2, 0)
	// valid: true
}

// d^k distances: the paper's multi-connectivity measure (minimum total
// length of k internally disjoint paths).
func ExampleDisjointPathDistance() {
	g := remspan.Ring(8)
	fmt.Println("d^1(0,4):", remspan.DisjointPathDistance(g, 0, 4, 1))
	fmt.Println("d^2(0,4):", remspan.DisjointPathDistance(g, 0, 4, 2))
	fmt.Println("d^3(0,4):", remspan.DisjointPathDistance(g, 0, 4, 3))
	// Output:
	// d^1(0,4): 4
	// d^2(0,4): 8
	// d^3(0,4): -1
}

// TwoConnecting spanners keep two disjoint routes alive for every
// 2-connected pair — multipath routing material.
func ExampleTwoConnecting() {
	g := remspan.Ring(10)
	s := remspan.TwoConnecting(g)
	paths, total, ok := remspan.MultipathRoutes(g, s.H, 0, 5, 2)
	fmt.Println("routes:", len(paths), "total length:", total, "ok:", ok)
	// Output:
	// routes: 2 total length: 10 ok: true
}

// The distributed protocol computes the same spanner in a constant
// number of synchronous rounds.
func ExampleRunDistributed() {
	g := remspan.RandomUDG(150, 3, 3)
	res, err := remspan.RunDistributed(g, remspan.AlgoExact, 0, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	centralized := remspan.Exact(g)
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("matches centralized:", res.H.M() == centralized.Edges())
	// Output:
	// rounds: 3
	// matches centralized: true
}
