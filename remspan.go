// Package remspan is a Go implementation of remote-spanners from
// "Remote-Spanners: What to Know beyond Neighbors" (Jacquet & Viennot,
// IPPS 2009).
//
// Given an unweighted graph G, a sub-graph H is an (α, β)-remote-spanner
// when, for every node u, the graph H_u — H augmented with all edges
// between u and its G-neighbors — approximates distances from u:
// d_{H_u}(u, v) ≤ α·d_G(u, v) + β. Remote-spanners model the sub-graph a
// link-state routing protocol (OSPF/OLSR) needs to flood network-wide
// given that every router already knows its own neighbors, and they can
// be far sparser than classical spanners: exact-distance
// (1,0)-remote-spanners exist with o(m) edges.
//
// The package offers:
//
//   - constructions: Exact (1,0), KConnecting (k disjoint-path
//     preserving), TwoConnecting ((2,−1) with 2 disjoint paths) and
//     LowStretch ((1+ε, 1−2ε)) remote-spanners, all computable by
//     constant-round distributed algorithms;
//   - exact verification of every guarantee (integer arithmetic, flow
//     based disjoint-path checks);
//   - input generators (random unit-disk/unit-ball graphs, classic
//     families);
//   - a synchronous distributed simulation of the RemSpan protocol;
//   - greedy link-state routing and multipoint-relay flooding built on
//     the spanners.
//
// See DESIGN.md for the paper-to-code map and EXPERIMENTS.md for the
// reproduced tables and figures.
package remspan

import (
	"fmt"

	"remspan/internal/domtree"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// Graph is a simple undirected graph over vertices 0..N-1.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return &Graph{g: graph.New(n)} }

// FromEdges builds a graph on n vertices from an edge list; duplicates
// and self loops are ignored.
func FromEdges(n int, edges [][2]int) *Graph { return &Graph{g: graph.FromEdges(n, edges)} }

// N returns the vertex count.
func (G *Graph) N() int { return G.g.N() }

// M returns the edge count.
func (G *Graph) M() int { return G.g.M() }

// AddEdge inserts the undirected edge {u, v}, reporting whether it was
// new.
func (G *Graph) AddEdge(u, v int) bool { return G.g.AddEdge(u, v) }

// HasEdge reports whether {u, v} is an edge.
func (G *Graph) HasEdge(u, v int) bool { return G.g.HasEdge(u, v) }

// Degree returns the degree of u.
func (G *Graph) Degree(u int) int { return G.g.Degree(u) }

// MaxDegree returns the maximum degree.
func (G *Graph) MaxDegree() int { return G.g.MaxDegree() }

// Neighbors returns the sorted neighbors of u.
func (G *Graph) Neighbors(u int) []int {
	nb := G.g.Neighbors(u)
	out := make([]int, len(nb))
	for i, v := range nb {
		out[i] = int(v)
	}
	return out
}

// Edges returns all edges with u < v in lexicographic order.
func (G *Graph) Edges() [][2]int {
	es := G.g.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{int(e[0]), int(e[1])}
	}
	return out
}

// Clone returns an independent copy.
func (G *Graph) Clone() *Graph { return &Graph{g: G.g.Clone()} }

// Distance returns the hop distance between u and v (-1 when
// disconnected).
func (G *Graph) Distance(u, v int) int {
	d := graph.BFS(G.g, u)[v]
	return int(d)
}

// Connected reports whether the graph is connected.
func (G *Graph) Connected() bool { return graph.IsConnected(G.g) }

// internal accessor for sibling facade files.
func (G *Graph) raw() *graph.Graph { return G.g }

// wrap converts an internal graph.
func wrap(g *graph.Graph) *Graph { return &Graph{g: g} }

// Stretch is an exact rational stretch bound (α, β) = (AlphaNum/AlphaDen,
// BetaNum/BetaDen).
type Stretch struct {
	AlphaNum, AlphaDen int64
	BetaNum, BetaDen   int64
}

// IntStretch returns the integer stretch (α, β).
func IntStretch(alpha, beta int64) Stretch {
	return Stretch{AlphaNum: alpha, AlphaDen: 1, BetaNum: beta, BetaDen: 1}
}

// String renders the stretch, e.g. "(4/3, 1/3)".
func (s Stretch) String() string { return s.internal().String() }

func (s Stretch) internal() spanner.Stretch {
	return spanner.Stretch{
		AlphaNum: s.AlphaNum, AlphaDen: s.AlphaDen,
		BetaNum: s.BetaNum, BetaDen: s.BetaDen,
	}
}

func fromInternalStretch(s spanner.Stretch) Stretch {
	return Stretch{
		AlphaNum: s.AlphaNum, AlphaDen: s.AlphaDen,
		BetaNum: s.BetaNum, BetaDen: s.BetaDen,
	}
}

// Spanner is a constructed remote-spanner together with its guarantee.
type Spanner struct {
	// H is the spanner sub-graph (same vertex set as the input).
	H *Graph
	// Guarantee is the proven stretch of the construction.
	Guarantee Stretch
	// KConnecting is the largest k for which the k-connecting guarantee
	// holds (1 for plain remote-spanners).
	KConnecting int
	// Kind names the construction.
	Kind string
	// TreeEdges is the per-root dominating-tree size (edges).
	TreeEdges []int
	// Radius is the dominating-tree radius r (flooding radius is
	// r−1+β).
	Radius int
}

// Edges returns the spanner's edge count.
func (s *Spanner) Edges() int { return s.H.M() }

// Exact returns a (1, 0)-remote-spanner of g: every augmented view H_u
// preserves exact distances from u (Prop. 5, k = 1). The construction
// is the union of greedy multipoint-relay selections and is within
// 2(1+log Δ) of the optimal (1,0)-remote-spanner (Th. 2).
func Exact(g *Graph) *Spanner {
	res := spanner.Exact(g.raw())
	return &Spanner{
		H:           wrap(res.Graph()),
		Guarantee:   IntStretch(1, 0),
		KConnecting: 1,
		Kind:        "exact",
		TreeEdges:   res.TreeEdges,
		Radius:      res.R,
	}
}

// KConnecting returns a k-connecting (1, 0)-remote-spanner (Th. 2): for
// every pair and every k' ≤ k, the minimum total length of k' disjoint
// paths is preserved in the augmented views.
func KConnecting(g *Graph, k int) *Spanner {
	res := spanner.KConnecting(g.raw(), k)
	return &Spanner{
		H:           wrap(res.Graph()),
		Guarantee:   IntStretch(1, 0),
		KConnecting: k,
		Kind:        fmt.Sprintf("%d-connecting", k),
		TreeEdges:   res.TreeEdges,
		Radius:      res.R,
	}
}

// TwoConnecting returns a 2-connecting (2, −1)-remote-spanner (Th. 3)
// with O(n) edges on unit-ball graphs of doubling metrics.
func TwoConnecting(g *Graph) *Spanner {
	res := spanner.TwoConnecting(g.raw())
	return &Spanner{
		H:           wrap(res.Graph()),
		Guarantee:   IntStretch(2, -1),
		KConnecting: 2,
		Kind:        "2-connecting (2,-1)",
		TreeEdges:   res.TreeEdges,
		Radius:      res.R,
	}
}

// LowStretch returns a (1+ε', 1−2ε')-remote-spanner with
// ε' = 1/⌈1/ε⌉ ≤ ε (Th. 1), with O(ε^{−(p+1)}·n) edges on unit-ball
// graphs of doubling dimension p. An eps outside (0, 1] is an error —
// the same contract RunDistributed applies to AlgoLowStretch (the
// internal builders keep panicking on invalid radii, which after this
// validation can only mean package-internal misuse).
func LowStretch(g *Graph, eps float64) (*Spanner, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("remspan: need 0 < eps <= 1, got %v", eps)
	}
	res := spanner.LowStretch(g.raw(), eps)
	return &Spanner{
		H:           wrap(res.Graph()),
		Guarantee:   fromInternalStretch(spanner.LowStretchOf(res.R)),
		KConnecting: 1,
		Kind:        fmt.Sprintf("low-stretch r=%d", res.R),
		TreeEdges:   res.TreeEdges,
		Radius:      res.R,
	}, nil
}

// radiusFor resolves ε to the dominating-tree radius r = ⌈1/ε⌉+1 and
// the effective ε' = 1/(r−1).
func radiusFor(eps float64) (int, float64) { return spanner.RadiusFor(eps) }

// DominatingTree computes a single (r, β)-dominating tree for root u
// (Algorithms 1–2; the building block of all constructions) and returns
// its edges as (child, parent) pairs. greedy selects Algorithm 1
// (greedy set cover, β ∈ {0, 1}) over Algorithm 2 (MIS, β = 1).
func DominatingTree(g *Graph, u, r, beta int, greedy bool) ([][2]int, error) {
	if r < 2 {
		return nil, fmt.Errorf("remspan: dominating tree radius must be >= 2")
	}
	var t *graph.Tree
	if greedy {
		if beta != 0 && beta != 1 {
			return nil, fmt.Errorf("remspan: greedy dominating trees support beta in {0, 1}")
		}
		t = domtree.Greedy(g.raw(), nil, u, r, beta)
	} else {
		if beta != 1 {
			return nil, fmt.Errorf("remspan: MIS dominating trees have beta = 1")
		}
		t = domtree.MIS(g.raw(), nil, u, r)
	}
	es := t.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{int(e[0]), int(e[1])}
	}
	return out, nil
}
