package remspan

import (
	"remspan/internal/oracle"
)

// DistanceOracle answers approximate distance queries from a
// remote-spanner: Query(u, v) = d_{H_u}(u, v), which the spanner's
// guarantee bounds by α·d_G(u, v) + β while never underestimating.
// One of the classical spanner applications from the paper's
// introduction, in the remote setting.
//
// A DistanceOracle is not safe for concurrent use; Clone per goroutine.
type DistanceOracle struct {
	o *oracle.Oracle
}

// NewOracle builds an oracle from a graph and a spanner of it.
func NewOracle(g *Graph, s *Spanner) *DistanceOracle {
	return &DistanceOracle{o: oracle.New(g.raw(), s.H.raw(), s.Guarantee.internal())}
}

// Query returns the estimated distance (an upper bound within the
// spanner's stretch), or -1 when v is unreachable from u in H_u.
func (d *DistanceOracle) Query(u, v int) int { return d.o.Query(u, v) }

// QueryBatch answers one source against many targets with a single
// traversal.
func (d *DistanceOracle) QueryBatch(u int, targets []int) []int {
	return d.o.QueryBatch(u, targets)
}

// Clone returns an independently usable oracle for another goroutine.
func (d *DistanceOracle) Clone() *DistanceOracle { return &DistanceOracle{o: d.o.Clone()} }

// Validate exhaustively checks the oracle's two-sided guarantee
// (d_G ≤ Query ≤ α·d_G + β) over all pairs on the word-parallel
// 64-source verification engine, returning the first violating pair in
// (u, v) order, or (-1, -1) when the guarantee holds everywhere.
func (d *DistanceOracle) Validate() (int, int) { return d.o.Validate() }

// StorageWords reports the oracle's memory footprint in 4-byte words —
// compare against the n² of an exact distance table.
func (d *DistanceOracle) StorageWords() int { return d.o.StorageWords() }
