module remspan

go 1.22
