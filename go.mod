module remspan

go 1.21
