package remspan

import (
	"fmt"

	"remspan/internal/dynamic"
	"remspan/internal/replica"
	"remspan/internal/routing"
)

// ReplicatedRouter is the fault-tolerant replicated forwarding tier
// (DESIGN.md §3f): a single writer maintains the (1,0)-remote-spanner
// and its forwarding tables under churn, shipping each published epoch
// as an immutable dirty-owner diff to N read replicas; a failover
// client spreads queries over the replicas by vertex-range affinity
// and answers every query with a typed result — table-routed when a
// sufficiently fresh replica exists, greedy-degraded otherwise, never
// a silent zero. This public surface runs a perfect in-process
// transport; the seeded fault-injection harness behind it lives in the
// internal chaos tests and the benchjson replicated suite.
type ReplicatedRouter struct {
	c  *replica.Cluster
	cl *replica.Client
}

// NewReplicatedRouter builds the tier over g with the given replica
// count: the writer's store is constructed (full spanner + table
// build), every replica is bootstrapped with a full shipment, and the
// failover client is wired to the writer's epoch as its freshness
// reference.
func NewReplicatedRouter(g *Graph, replicas int) (*ReplicatedRouter, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("remspan: need at least one replica, got %d", replicas)
	}
	bb := dynamic.Builders()[0] // kgreedy k=1: the exact (1,0) spanner
	st := routing.NewStore(dynamic.New(g.raw(), bb.Radius, bb.Build))
	c := replica.NewCluster(st, replicas, replica.FaultPlan{})
	return &ReplicatedRouter{c: c, cl: replica.NewClient(c, replica.DefaultClientConfig(1))}, nil
}

// Update applies one churn batch — edges appearing and disappearing —
// to the writer and ships the resulting epoch diff to every replica.
// It returns the number of changes that had an effect.
func (rr *ReplicatedRouter) Update(added, removed [][2]int) int {
	changes := make([]dynamic.Change, 0, len(added)+len(removed))
	for _, e := range removed {
		changes = append(changes, dynamic.Change{Kind: dynamic.RemoveEdge, U: e[0], V: e[1]})
	}
	for _, e := range added {
		changes = append(changes, dynamic.Change{Kind: dynamic.AddEdge, U: e[0], V: e[1]})
	}
	rr.c.Tick(changes)
	rr.cl.Tick()
	return len(changes)
}

// Route serves one s→t query through the failover client. reason is
// "delivered" for a fresh table route, "degraded" for a greedy
// fallback on a replica's local spanner view, else "unreachable",
// "stale-link" or "trapped". lag is how many epochs behind the writer
// the serving replica was.
func (rr *ReplicatedRouter) Route(s, t int) (path []int, reason string, lag uint64, ok bool) {
	o := rr.cl.Route(s, t)
	if !o.OK {
		return nil, o.Reason.String(), o.Lag, false
	}
	out := make([]int, len(o.Path))
	for i, v := range o.Path {
		out[i] = int(v)
	}
	return out, o.Reason.String(), o.Lag, true
}

// Epoch returns the writer's current published epoch sequence.
func (rr *ReplicatedRouter) Epoch() uint64 { return rr.c.W.Seq() }

// MaxLag returns the largest epoch lag any replica currently has
// behind the writer (0 on the perfect transport once shipments land).
func (rr *ReplicatedRouter) MaxLag() uint64 { return rr.c.MaxLag() }
