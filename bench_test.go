// Benchmarks regenerating every reproduced table/figure (experiment ids
// E1–E16 of DESIGN.md §4) plus ablations of the implementation's design
// choices. Custom metrics report the quantities the paper's evaluation
// is about (edges, rounds, transmissions) alongside time/op.
package remspan_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"remspan"
	"remspan/internal/baseline"
	"remspan/internal/distsim"
	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/expt"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func benchCfg() expt.Config { return expt.Config{Quick: true, Seed: 1} }

// runExperiment benchmarks a whole experiment driver end to end.
func runExperiment(b *testing.B, id string) {
	e, ok := expt.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B)           { runExperiment(b, "E1") }
func BenchmarkTable1(b *testing.B)            { runExperiment(b, "E2") }
func BenchmarkScalingUDG(b *testing.B)        { runExperiment(b, "E3") }
func BenchmarkEpsilonSweep(b *testing.B)      { runExperiment(b, "E4") }
func BenchmarkKConnSweep(b *testing.B)        { runExperiment(b, "E5") }
func BenchmarkApproxRatio(b *testing.B)       { runExperiment(b, "E6") }
func BenchmarkDistributedRounds(b *testing.B) { runExperiment(b, "E7") }
func BenchmarkRoutingStretch(b *testing.B)    { runExperiment(b, "E8") }
func BenchmarkMultipath(b *testing.B)         { runExperiment(b, "E9") }
func BenchmarkFlooding(b *testing.B)          { runExperiment(b, "E10") }
func BenchmarkFrontier(b *testing.B)          { runExperiment(b, "E11") }
func BenchmarkEdgeConnecting(b *testing.B)    { runExperiment(b, "E12") }
func BenchmarkLiveProtocol(b *testing.B)      { runExperiment(b, "E13") }
func BenchmarkChurn(b *testing.B)             { runExperiment(b, "E14") }
func BenchmarkWorstCase(b *testing.B)         { runExperiment(b, "E15") }
func BenchmarkAsynchrony(b *testing.B)        { runExperiment(b, "E16") }
func BenchmarkLiveNetwork(b *testing.B)       { runExperiment(b, "E17") }

// --- construction micro-benchmarks (the Table 1 structures) ---

func benchUDG(b *testing.B, n int) *remspan.Graph {
	b.Helper()
	return remspan.RandomUDG(n, 4, 1)
}

func BenchmarkConstructExact(b *testing.B) {
	g := benchUDG(b, 400)
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		edges = remspan.Exact(g).Edges()
	}
	b.ReportMetric(float64(edges), "edges")
	b.ReportMetric(float64(g.M()), "graph-edges")
}

func BenchmarkConstructKConnecting3(b *testing.B) {
	g := benchUDG(b, 400)
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		edges = remspan.KConnecting(g, 3).Edges()
	}
	b.ReportMetric(float64(edges), "edges")
}

func BenchmarkConstructTwoConnecting(b *testing.B) {
	g := benchUDG(b, 400)
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		edges = remspan.TwoConnecting(g).Edges()
	}
	b.ReportMetric(float64(edges), "edges")
}

func BenchmarkConstructLowStretch(b *testing.B) {
	g := benchUDG(b, 400)
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		s, err := remspan.LowStretch(g, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		edges = s.Edges()
	}
	b.ReportMetric(float64(edges), "edges")
}

func BenchmarkConstructBaswanaSen(b *testing.B) {
	gg := remspan.RandomUDG(400, 4, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		edges = baseline.BaswanaSen(g, 3, rng).M()
	}
	b.ReportMetric(float64(edges), "edges")
}

func BenchmarkVerifyExactAllPairs(b *testing.B) {
	g := benchUDG(b, 300)
	s := remspan.Exact(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := remspan.Verify(g, s.H, s.Guarantee); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedProtocol(b *testing.B) {
	g := benchUDG(b, 300)
	b.ResetTimer()
	var rounds int
	var words int64
	for i := 0; i < b.N; i++ {
		res, err := remspan.RunDistributed(g, remspan.AlgoExact, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		rounds, words = res.Rounds, res.Words
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(words), "words")
}

// BenchmarkDistsim measures the distributed simulation engine
// (DESIGN.md §3d) on a constant-degree UDG: the flat-state engine vs
// the message-level reference statically, and the incremental live
// tick (mobility diff → dirty-root reflood) that the 50k-scale
// BENCH_distsim.json suite extends.
func BenchmarkDistsim(b *testing.B) {
	const n, deg = 2000, 8
	side := math.Sqrt(math.Pi * n / deg)
	gg := remspan.RandomUDG(n, side, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	build := func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, 1)
	}
	b.Run("engine-static", func(b *testing.B) {
		b.ReportAllocs()
		var words int64
		for i := 0; i < b.N; i++ {
			words = distsim.RunRemSpan(g, 1, build).Words
		}
		b.ReportMetric(float64(words), "words")
	})
	b.Run("reference-static", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			distsim.RunRemSpanReference(g, 1, func(local *graph.Graph, u int) *graph.Tree {
				return domtree.KGreedy(local, u, 1)
			})
		}
	})
	b.Run("live-tick", func(b *testing.B) {
		e := distsim.NewEngine(g, 1, build)
		e.Run()
		add := []dynamic.Change{{Kind: dynamic.AddEdge, U: 0, V: 1}}
		del := []dynamic.Change{{Kind: dynamic.RemoveEdge, U: 0, V: 1}}
		if g.HasEdge(0, 1) {
			add, del = del, add
		}
		e.Reflood(add)
		e.Reflood(del)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Reflood(add)
			e.Reflood(del)
		}
	})
}

// --- ablations (DESIGN.md §5) ---

// Parallel per-node tree construction vs the serial loop (both on the
// CSR fast path, isolating the parallelism win).
func BenchmarkAblationParallel(b *testing.B) {
	gg := remspan.RandomUDG(500, 4, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	b.Run("serial", func(b *testing.B) {
		// Snapshot inside the loop to mirror spanner.Exact, which
		// snapshots per construction — both arms then differ only in
		// the worker pool.
		for i := 0; i < b.N; i++ {
			spanner.UnionSerialCSR(graph.NewCSR(g), func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
				return domtree.KGreedyCSR(c, s, u, 1)
			})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spanner.Exact(g)
		}
	})
}

// The whole construction pipeline: retained map-based reference vs the
// production CSR + scratch + lazy-heap path (this PR's tentpole).
func BenchmarkAblationPipeline(b *testing.B) {
	gg := remspan.RandomUDG(400, 4, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	b.Run("map-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spanner.UnionSerial(g, func(u int, s *graph.BFSScratch) *graph.Tree {
				return domtree.KGreedy(g, u, 1)
			})
		}
	})
	b.Run("csr-scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spanner.UnionSerialCSR(graph.NewCSR(g), func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
				return domtree.KGreedyCSR(c, s, u, 1)
			})
		}
	})
}

// Reusable bounded-BFS scratch vs per-root allocation.
func BenchmarkAblationScratch(b *testing.B) {
	gg := remspan.RandomUDG(400, 4, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	b.Run("shared-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := graph.NewBFSScratch(g.N())
			for u := 0; u < g.N(); u++ {
				domtree.MIS(g, s, u, 3)
			}
		}
	})
	b.Run("fresh-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for u := 0; u < g.N(); u++ {
				domtree.MIS(g, nil, u, 3)
			}
		}
	})
}

// Greedy (Alg. 1) vs MIS (Alg. 2) dominating trees for the low-stretch
// construction: the log Δ approximation guarantee vs the doubling-size
// guarantee.
func BenchmarkAblationGreedyVsMIS(b *testing.B) {
	gg := remspan.RandomUDG(350, 4, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	b.Run("greedy-trees", func(b *testing.B) {
		var edges int
		for i := 0; i < b.N; i++ {
			edges = spanner.LowStretchGreedy(g, 0.5).Edges()
		}
		b.ReportMetric(float64(edges), "edges")
	})
	b.Run("mis-trees", func(b *testing.B) {
		var edges int
		for i := 0; i < b.N; i++ {
			edges = spanner.LowStretch(g, 0.5).Edges()
		}
		b.ReportMetric(float64(edges), "edges")
	})
}

// Incremental spanner maintenance per change: the snapshot-free delta
// path (single and batched) vs the snapshot-per-change ablation vs full
// recomputation.
func BenchmarkAblationIncremental(b *testing.B) {
	gg := remspan.RandomUDG(400, 4, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	build := func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, 1)
	}
	toggle := func(m *dynamic.Maintainer, rng *rand.Rand) {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			return
		}
		if m.Graph().HasEdge(u, v) {
			m.RemoveEdge(u, v)
		} else {
			m.AddEdge(u, v)
		}
	}
	b.Run("incremental-delta", func(b *testing.B) {
		m := dynamic.New(g, 1, build)
		rng := rand.New(rand.NewSource(2))
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			toggle(m, rng)
		}
	})
	b.Run("incremental-batch64", func(b *testing.B) {
		m := dynamic.New(g, 1, build)
		rng := rand.New(rand.NewSource(2))
		batch := make([]dynamic.Change, 0, 64)
		b.ResetTimer()
		b.ReportAllocs()
		// One op = one batch of 64 toggles with a single unioned repair.
		for i := 0; i < b.N; i++ {
			batch = batch[:0]
			for len(batch) < cap(batch) {
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u == v {
					continue
				}
				kind := dynamic.AddEdge
				if m.Graph().HasEdge(u, v) {
					kind = dynamic.RemoveEdge
				}
				batch = append(batch, dynamic.Change{Kind: kind, U: u, V: v})
			}
			m.ApplyBatch(batch)
		}
	})
	b.Run("incremental-snapshot", func(b *testing.B) {
		m := dynamic.New(g, 1, build)
		m.SetSnapshotPerChange(true)
		rng := rand.New(rand.NewSource(2))
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			toggle(m, rng)
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		work := g.Clone()
		rng := rand.New(rand.NewSource(2))
		scratch := domtree.NewScratch(work.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u, v := rng.Intn(work.N()), rng.Intn(work.N())
			if u == v {
				continue
			}
			if work.HasEdge(u, v) {
				work.RemoveEdge(u, v)
			} else {
				work.AddEdge(u, v)
			}
			c := graph.NewCSR(work)
			es := graph.NewEdgeSet(work.N())
			for w := 0; w < work.N(); w++ {
				es.AddTree(build(c, scratch, w))
			}
		}
	})
}

// BenchmarkMaintainerToggle pins the snapshot-free guarantee: a single
// edge toggle's time and allocations must not grow with n (with the
// delta-patched CSR there is no O(n+m) copy on the path; compare the
// allocs/op across the sub-benchmarks and against the snapshot arm of
// BenchmarkAblationIncremental).
func BenchmarkMaintainerToggle(b *testing.B) {
	build := func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, 1)
	}
	for _, n := range []int{2000, 20000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Side ∝ √n keeps the average degree ≈ 8 across sizes —
			// supercritical (2D percolation threshold ≈ 4.5), so the
			// kept largest component spans nearly all n vertices.
			side := math.Sqrt(math.Pi * float64(n) / 8)
			gg := remspan.RandomUDG(n, side, 1)
			g := graph.FromEdges(gg.N(), gg.Edges())
			m := dynamic.New(g, 1, build)
			rng := rand.New(rand.NewSource(3))
			// Toggle within a fixed pool so rows stay warm (steady state).
			pool := make([][2]int, 0, 128)
			for len(pool) < cap(pool) {
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u != v {
					pool = append(pool, [2]int{u, v})
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pool[rng.Intn(len(pool))]
				if m.Graph().HasEdge(p[0], p[1]) {
					m.RemoveEdge(p[0], p[1])
				} else {
					m.AddEdge(p[0], p[1])
				}
			}
		})
	}
}

// Eager vs lazy (priority-queue) greedy k-cover selection, plus the
// production CSR + scratch + lazy path the pipeline now runs on.
func BenchmarkAblationLazyGreedy(b *testing.B) {
	gg := remspan.RandomUDG(500, 4, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for u := 0; u < g.N(); u += 7 {
				domtree.KGreedy(g, u, 2)
			}
		}
	})
	b.Run("lazy-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for u := 0; u < g.N(); u += 7 {
				domtree.KGreedyLazy(g, u, 2)
			}
		}
	})
	b.Run("lazy-csr-scratch", func(b *testing.B) {
		c := graph.NewCSR(g)
		s := domtree.NewScratch(g.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for u := 0; u < g.N(); u += 7 {
				domtree.KGreedyCSR(c, s, u, 2)
			}
		}
	})
}

// All-roots BFS sweep: mutable adjacency-list graph vs immutable CSR
// snapshot (memory-layout ablation).
func BenchmarkAblationCSR(b *testing.B) {
	gg := remspan.RandomUDG(1200, 4, 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	b.Run("adjacency-list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for u := 0; u < g.N(); u += 3 {
				graph.BFS(g, u)
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		c := graph.NewCSR(g)
		dist := make([]int32, g.N())
		queue := make([]int32, 0, g.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for u := 0; u < g.N(); u += 3 {
				c.BFS(u, dist, queue)
			}
		}
	})
}

// All-pairs verification: scalar BFS pair per vertex vs the 64-source
// word-parallel bit-packed engine (deadline-lockstep judge).
func BenchmarkAblationBitBFS(b *testing.B) {
	gg := remspan.RandomUDG(1500, math.Sqrt(math.Pi*1500/16), 1)
	g := graph.FromEdges(gg.N(), gg.Edges())
	h := spanner.Exact(g).Graph()
	st := spanner.NewStretch(1, 0)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := spanner.CheckScalar(g, h, st); v != nil {
				b.Fatal(v)
			}
		}
	})
	b.Run("bit-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := spanner.Check(g, h, st); v != nil {
				b.Fatal(v)
			}
		}
	})
}

// UDG construction: grid buckets vs quadratic brute force.
func BenchmarkAblationUDGGrid(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := geom.UniformBox(2000, 2, 10, rng)
	b.Run("grid-buckets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			geom.UnitDiskGraph(pts, 1.0)
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		m := geom.EuclideanMetric{Points: pts}
		for i := 0; i < b.N; i++ {
			geom.UnitBallGraph(m, 1.0)
		}
	})
}
